//! Offline typecheck stub for `rand` (0.10-style `Rng`/`RngExt` split).
//!
//! Functionally a SplitMix64 generator — deterministic and NOT suitable for
//! anything beyond the offline typecheck harness in `devtools/`.

/// Core RNG trait (object-safe).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types producible by [`RngExt::random`].
pub trait FromRandom {
    /// Builds a value from 64 random bits.
    fn from_u64(bits: u64) -> Self;
}

impl FromRandom for f64 {
    fn from_u64(bits: u64) -> Self {
        // 53 mantissa bits -> [0, 1)
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl FromRandom for f32 {
    fn from_u64(bits: u64) -> Self {
        f64::from_u64(bits) as f32
    }
}
impl FromRandom for bool {
    fn from_u64(bits: u64) -> Self {
        bits & 1 == 1
    }
}

macro_rules! from_random_int {
    ($($t:ty),* $(,)?) => {
        $(
            impl FromRandom for $t {
                fn from_u64(bits: u64) -> Self {
                    bits as $t
                }
            }
        )*
    };
}
from_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Extension methods over any [`Rng`] (mirrors rand 0.10's `RngExt`).
pub trait RngExt: Rng {
    /// A uniformly random value of `T`.
    fn random<T: FromRandom>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Stand-in for `rand::rngs::StdRng` backed by SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    /// Stand-in for `rand::rngs::SmallRng` (same engine as the stub StdRng).
    pub type SmallRng = StdRng;
}
