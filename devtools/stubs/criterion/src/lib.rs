//! Offline typecheck stub for `criterion`.
//!
//! Benchmarks typecheck and run their closures exactly once (no
//! measurement, no statistics, no reports). Built only by
//! `devtools/offline-check.sh`.

#![allow(dead_code)]

use std::fmt::Display;

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Stand-in for `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

/// Stand-in for `criterion::Throughput`.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Stand-in for `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name + parameter id.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self { id: format!("{}/{}", name.into(), parameter) }
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Timing handle passed to bench closures.
#[derive(Debug, Default)]
pub struct Bencher {}

impl Bencher {
    /// Runs the routine (stub: once, unmeasured).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Declares group throughput (ignored).
    pub fn throughput(&mut self, _throughput: Throughput) {}

    /// Sets the sample count (ignored).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let _ = (&self.parent, &self.name, id.to_string());
        f(&mut Bencher::default());
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let _ = id;
        f(&mut Bencher::default(), input);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.into() }
    }

    /// Runs one benchmark outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let _ = id.to_string();
        f(&mut Bencher::default());
    }
}

/// Stand-in for `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Stand-in for `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
