//! Offline typecheck stub for `parking_lot`, backed by `std::sync`.
//!
//! Matches parking_lot's no-poisoning API shape (guards by `&mut` in
//! `Condvar::wait`); poison errors from the std primitives are swallowed.
//! Used only by `devtools/offline-check.sh`.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// Stand-in for `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Stand-in for `parking_lot::MutexGuard`.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait can move the std guard out and back.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex.
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock (parking_lot-style: no poison `Result`).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.inner.try_lock().ok().map(|g| MutexGuard { inner: Some(g) })
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Stand-in for `parking_lot::WaitTimeoutResult`.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait timed out.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Stand-in for `parking_lot::Condvar`.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condvar.
    pub const fn new() -> Self {
        Self { inner: std::sync::Condvar::new() }
    }

    /// Blocks until notified, releasing the guard while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Blocks until notified or the timeout elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wakes one parked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all parked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Stand-in for `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock.
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}
