//! Offline typecheck stub for `proptest`.
//!
//! Provides the `proptest!` grammar, `Strategy` combinators, and common
//! strategy constructors with matching *types* only: generated tests
//! typecheck their bodies inside a never-invoked closure, so running them
//! is a no-op (they trivially pass). Built only by
//! `devtools/offline-check.sh`; real property exploration requires the
//! real crate.

#![allow(dead_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Strategy trait (typecheck-only: no value generation).
pub trait Strategy: Sized {
    /// The type of values this strategy produces.
    type Value;

    /// Maps produced values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F> {
        Map { source: self, func: f }
    }

    /// Chains a dependent strategy.
    fn prop_flat_map<U: Strategy, F: Fn(Self::Value) -> U>(self, f: F) -> FlatMap<Self, F> {
        FlatMap { source: self, func: f }
    }

    /// Filters produced values.
    fn prop_filter<R, F: Fn(&Self::Value) -> bool>(self, _reason: R, f: F) -> Filter<Self, F> {
        Filter { source: self, func: f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        BoxedStrategy(PhantomData)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    func: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    func: F,
}

impl<S: Strategy, U: Strategy, F: Fn(S::Value) -> U> Strategy for FlatMap<S, F> {
    type Value = U::Value;
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    func: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
}

/// See [`Strategy::boxed`].
pub struct BoxedStrategy<T>(PhantomData<T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
}

/// A strategy producing exactly one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
}

/// The `any::<T>()` strategy.
pub struct Any<T>(PhantomData<T>);

/// Produces arbitrary values of `T`.
pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

impl<T> Strategy for Any<T> {
    type Value = T;
}

impl<T: Clone> Strategy for Range<T> {
    type Value = T;
}

impl<T: Clone> Strategy for RangeInclusive<T> {
    type Value = T;
}

/// Regex string strategies: `"[a-z]{1,5}"` produces matching `String`s.
impl Strategy for &'static str {
    type Value = String;
}

macro_rules! tuple_strategy {
    ($($s:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
        }
    };
}

tuple_strategy!(S1);
tuple_strategy!(S1, S2);
tuple_strategy!(S1, S2, S3);
tuple_strategy!(S1, S2, S3, S4);
tuple_strategy!(S1, S2, S3, S4, S5);
tuple_strategy!(S1, S2, S3, S4, S5, S6);

/// Strategy support machinery used by the `proptest!` expansion.
pub mod strategy {
    pub use super::{BoxedStrategy, Just, Strategy};

    /// Typechecks the test body against the strategies without running it.
    pub fn run<S, F>(strategies: S, body: F)
    where
        S: Strategy,
        F: FnMut(S::Value) -> Result<(), crate::test_runner::TestCaseError>,
    {
        let _ = (strategies, body);
    }
}

/// Runner types (subset of `proptest::test_runner`).
pub mod test_runner {
    /// A failed or rejected test case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// Assertion failure.
        Fail(String),
        /// Rejected input (`prop_assume!`).
        Reject(String),
    }

    impl TestCaseError {
        /// An assertion failure.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejected test case.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
                TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
            }
        }
    }

    /// Result of one test case.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

/// Runner configuration (accepted and ignored).
#[derive(Debug, Clone, Default)]
pub struct ProptestConfig {
    /// Number of cases the real runner would execute.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use std::collections::{BTreeMap, BTreeSet};
    use std::marker::PhantomData;

    /// `Vec` strategy with the given element strategy and size range.
    pub fn vec<S: Strategy, R>(element: S, _size: R) -> VecStrategy<S> {
        VecStrategy { element }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
    }

    /// `BTreeSet` strategy.
    pub fn btree_set<S: Strategy, R>(element: S, _size: R) -> BTreeSetStrategy<S> {
        BTreeSetStrategy { element }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S> {
        type Value = BTreeSet<S::Value>;
    }

    /// `BTreeMap` strategy.
    pub fn btree_map<K: Strategy, V: Strategy, R>(
        key: K,
        value: V,
        _size: R,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy { key, value }
    }

    /// See [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V> {
        type Value = BTreeMap<K::Value, V::Value>;
    }

    /// `HashMap` strategy.
    pub fn hash_map<K: Strategy, V: Strategy, R>(
        key: K,
        value: V,
        _size: R,
    ) -> HashMapStrategy<K, V> {
        HashMapStrategy { inner: (key, value), marker: PhantomData }
    }

    /// See [`hash_map`].
    pub struct HashMapStrategy<K, V> {
        inner: (K, V),
        marker: PhantomData<()>,
    }

    impl<K: Strategy, V: Strategy> Strategy for HashMapStrategy<K, V> {
        type Value = std::collections::HashMap<K::Value, V::Value>;
    }
}

/// Fixed-size array strategies.
pub mod array {
    use super::Strategy;

    macro_rules! uniform_array {
        ($name:ident, $n:literal) => {
            /// Array strategy repeating one element strategy.
            pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
                UniformArray { element }
            }
        };
    }

    uniform_array!(uniform1, 1);
    uniform_array!(uniform2, 2);
    uniform_array!(uniform3, 3);
    uniform_array!(uniform4, 4);
    uniform_array!(uniform5, 5);
    uniform_array!(uniform6, 6);
    uniform_array!(uniform7, 7);
    uniform_array!(uniform8, 8);

    /// See the `uniformN` constructors.
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
    }
}

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Stand-in for `proptest::proptest!`: each property becomes a test whose
/// body is typechecked inside a never-invoked closure.
#[macro_export]
macro_rules! proptest {
    (
        $(#![proptest_config($cfg:expr)])?
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::strategy::run(
                    ($($strat,)+),
                    |($($arg,)+)| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

/// Stand-in for `prop_assert!`: early-returns a `TestCaseError` like the
/// real macro (so it works in helpers returning `Result<_, TestCaseError>`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Stand-in for `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, "assertion failed: {:?} != {:?}", left, right);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Stand-in for `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, "assertion failed: {:?} == {:?}", left, right);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, $($fmt)+);
    }};
}

/// Stand-in for `prop_assume!`: rejects the case via an early return.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Stand-in for `prop_oneof!`: typechecks every arm, produces the first.
/// All arms must share a `Strategy::Value` type in real proptest; the stub
/// only requires (and only checks) that each arm is a valid expression.
#[macro_export]
macro_rules! prop_oneof {
    ($first:expr $(, $rest:expr)* $(,)?) => {{
        $( let _ = &$rest; )*
        $first
    }};
}
